"""The flow table, with the paper's canonical representation.

Section 2.2.2, "Merging equivalent flow tables": two tables holding the same
rules in different insertion orders are semantically equivalent whenever the
differing-order rules do not overlap (no packet matches both), yet a naive
list representation makes the model checker treat them as distinct states.
The canonical representation sorts rules into a unique order — by descending
priority, then by a stable serialization of the pattern — so equivalent
tables serialize identically.  Disabling this (``canonical=False``)
reproduces the NO-SWITCH-REDUCTION baseline of Table 1, where insertion
order leaks into the state hash.

Lookup semantics follow OpenFlow: the highest-priority matching rule wins;
among equal-priority overlapping rules the earliest-inserted wins (kept
deterministic via an insertion sequence number).
"""

from __future__ import annotations

from repro.openflow.match import Match
from repro.openflow.packet import Packet
from repro.openflow.rules import Rule


class FlowTable:
    """An OpenFlow flow table."""

    def __init__(self, canonical: bool = True):
        self.canonical_mode = canonical
        self._entries: list[tuple[int, Rule]] = []  # (insertion_seq, rule)
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return (rule for _, rule in self._entries)

    @property
    def rules(self) -> list[Rule]:
        return [rule for _, rule in self._entries]

    def clone(self) -> "FlowTable":
        """Checkpoint copy: rules are cloned (their counters are per-state),
        sharing patterns, actions, and each rule's cached counter-free
        canonical form; insertion order is preserved.  Under copy-on-write
        checkpointing this runs only when the owning switch materializes
        (``System._dirty``) — the table is never mutated while shared."""
        new = FlowTable.__new__(FlowTable)
        new.canonical_mode = self.canonical_mode
        new._entries = [(seq, rule.clone()) for seq, rule in self._entries]
        new._next_seq = self._next_seq
        return new

    def install(self, rule: Rule) -> None:
        """Add a rule; replaces an existing entry with identical match+priority.

        OFPFC_ADD semantics: an exact-duplicate entry overwrites, resetting
        counters.  The rewritten entry takes a fresh position at the *tail*
        of the list — as in a naive list-based switch implementation — which
        is precisely the source of semantically-equivalent-but-differently-
        ordered tables that the canonical representation merges (Table 1's
        NO-SWITCH-REDUCTION comparison).
        """
        self._entries = [(seq, existing) for seq, existing in self._entries
                         if not existing.same_entry(rule)]
        self._entries.append((self._next_seq, rule))
        self._next_seq += 1

    def remove(self, pattern: Match, priority: int | None = None,
               strict: bool = False) -> list[Rule]:
        """Delete rules, OFPFC_DELETE style.

        Non-strict delete removes every rule whose pattern *overlaps* the
        given one (i.e. the given wildcard pattern subsumes-or-intersects the
        rule); strict delete removes only the rule with the identical pattern
        (and priority, when given).  Returns the removed rules.
        """
        removed: list[Rule] = []
        kept: list[tuple[int, Rule]] = []
        for seq, rule in self._entries:
            if strict:
                doomed = rule.match == pattern and (
                    priority is None or rule.priority == priority
                )
            else:
                doomed = pattern.overlaps(rule.match) and (
                    priority is None or rule.priority == priority
                )
            if doomed:
                removed.append(rule)
            else:
                kept.append((seq, rule))
        self._entries = kept
        return removed

    def remove_rule(self, rule: Rule) -> bool:
        """Remove one specific rule object (used by expiry transitions)."""
        for i, (_, existing) in enumerate(self._entries):
            if existing is rule:
                del self._entries[i]
                return True
        return False

    def lookup(self, packet: Packet, in_port: int) -> Rule | None:
        """Return the highest-priority rule matching ``packet`` on ``in_port``.

        Ties between equal-priority overlapping rules break toward the
        earliest-installed rule, keeping the data plane deterministic.
        """
        best: Rule | None = None
        best_key: tuple[int, int] | None = None
        for seq, rule in self._entries:
            if rule.match.matches(packet, in_port):
                key = (-rule.priority, seq)
                if best_key is None or key < best_key:
                    best, best_key = rule, key
        return best

    def expirable_rules(self) -> list[Rule]:
        """Rules eligible for an explicit expiry transition (hard timeout)."""
        return [rule for _, rule in self._entries
                if rule.hard_timeout and rule.hard_timeout > 0]

    def canonical(self, include_counters: bool = True) -> tuple:
        """Serialization for state hashing.

        Canonical mode sorts rules into the unique order described in the
        paper; non-canonical mode preserves the insertion order, so the model
        checker sees two insertion orders of non-overlapping rules as two
        distinct states (NO-SWITCH-REDUCTION).
        """
        serialized = [rule.canonical(include_counters) for _, rule in self._entries]
        if self.canonical_mode:
            serialized.sort()
        return tuple(serialized)

    def __repr__(self) -> str:
        return f"FlowTable({self.rules!r})"
