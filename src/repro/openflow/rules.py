"""Flow-table rules.

A :class:`Rule` pairs a :class:`~repro.openflow.match.Match` pattern with an
action list, a priority, traffic counters (packets and bytes processed so
far, per Section 1.1), and soft/hard timeout metadata.

Timeouts are *metadata*: the model has no wall clock (see DESIGN.md).  When
``enable_rule_timeouts`` is on, the switch exposes explicit ``rule_expire``
transitions for rules with a finite hard timeout, letting the model checker
explore expiry orderings; soft (idle) timeouts never fire while the model
keeps delivering matching traffic, which reproduces the conditions of
BUG-I.
"""

from __future__ import annotations

from repro.openflow.actions import Action, canonical_actions
from repro.openflow.match import Match

#: Sentinel for "never expires", matching the paper's ``PERMANENT``.
PERMANENT = 0

DEFAULT_PRIORITY = 0x8000


class Rule:
    """One flow-table entry."""

    __slots__ = (
        "match",
        "actions",
        "priority",
        "idle_timeout",
        "hard_timeout",
        "cookie",
        "packet_count",
        "byte_count",
        "_static_canon",
    )

    def __init__(
        self,
        match: Match,
        actions: list[Action],
        priority: int = DEFAULT_PRIORITY,
        idle_timeout: int = PERMANENT,
        hard_timeout: int = PERMANENT,
        cookie: int = 0,
    ):
        self.match = match
        self.actions = list(actions)
        self.priority = priority
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.cookie = cookie
        self.packet_count = 0
        self.byte_count = 0
        #: Lazily rendered counter-free canonical form; the pattern,
        #: actions, and metadata are immutable once installed, so clones
        #: share it and only counters render per call.
        self._static_canon: tuple | None = None

    def record_hit(self, byte_count: int) -> None:
        """Update the rule's traffic counters after a match."""
        self.packet_count += 1
        self.byte_count += byte_count

    def clone(self) -> "Rule":
        """Checkpoint copy: counters are per-state; the match pattern and
        action objects are immutable once installed and stay shared."""
        new = Rule.__new__(Rule)
        new.match = self.match
        new.actions = list(self.actions)
        new.priority = self.priority
        new.idle_timeout = self.idle_timeout
        new.hard_timeout = self.hard_timeout
        new.cookie = self.cookie
        new.packet_count = self.packet_count
        new.byte_count = self.byte_count
        new._static_canon = self._static_canon
        return new

    @property
    def can_expire(self) -> bool:
        return self.hard_timeout != PERMANENT or self.idle_timeout != PERMANENT

    def canonical(self, include_counters: bool = True) -> tuple:
        """Stable serialization used both for ordering and state hashing."""
        base = self._static_canon
        if base is None:
            base = self._static_canon = (
                self.priority,
                self.match.canonical(),
                canonical_actions(self.actions),
                self.idle_timeout,
                self.hard_timeout,
                self.cookie,
            )
        if include_counters:
            return base + (self.packet_count, self.byte_count)
        return base

    def same_entry(self, other: "Rule") -> bool:
        """True when the entries coincide ignoring counters (strict identity)."""
        return (
            self.match == other.match
            and self.priority == other.priority
        )

    def __repr__(self) -> str:
        return (
            f"Rule(prio={self.priority}, {self.match!r}, acts={self.actions!r},"
            f" hits={self.packet_count})"
        )
