"""Predefined scenarios reproducing every experiment of the paper.

Each builder returns a :class:`repro.nice.Scenario` wiring together the
topology, hosts, application, correctness properties, and configuration the
corresponding paper experiment uses:

* :func:`ping_experiment` — the Section 7 performance workload (Figure 1
  topology, layer-2 ping pairs, symbolic execution off);
* :func:`pyswitch_mobile` (BUG-I), :func:`pyswitch_direct_path` (BUG-II),
  :func:`pyswitch_loop` (BUG-III);
* :func:`loadbalancer_scenario` (BUG-IV..VII);
* :func:`energy_te_scenario` (BUG-VIII..XI).
"""

from __future__ import annotations

import dataclasses
import functools
import inspect

from repro.apps.energy_te import EnergyTrafficEngineering, expected_path
from repro.apps.loadbalancer import LoadBalancer, ReplicaSpec, VipServer
from repro.apps.pyswitch import PySwitch
from repro.config import NiceConfig
from repro.hosts.client import Client
from repro.hosts.mobile import MobileHost
from repro.hosts.ping import PingResponder
from repro.mc.wire import ScenarioSpec
from repro.nice import Scenario
from repro.openflow.packet import (
    MacAddress,
    TCP_ACK,
    TCP_SYN,
    arp_request,
    ip_from_string,
    l2_ping,
    tcp_packet,
)
from repro.properties import (
    FlowAffinity,
    NoBlackHoles,
    NoForgottenPackets,
    NoForwardingLoops,
    StrictDirectPaths,
    UseCorrectRoutingTable,
)

#: The scenario registry: name -> builder.  Spawned and socket workers
#: rebuild the initial :class:`~repro.mc.system.System` by looking the
#: scenario up here from a shipped :class:`~repro.mc.wire.ScenarioSpec`
#: instead of inheriting closures from a forked parent — closures do not
#: survive pickling, registry names do.  ``nice list`` and the CLI's
#: scenario choices are driven by this table too.
REGISTRY: dict = {}


def registered(name: str):
    """Register a scenario builder and stamp everything it builds with a
    portable :class:`~repro.mc.wire.ScenarioSpec` (name + call kwargs +
    final config)."""
    def decorate(builder):
        signature = inspect.signature(builder)

        @functools.wraps(builder)
        def wrapper(*args, **kwargs):
            scenario = builder(*args, **kwargs)
            arguments = dict(signature.bind_partial(*args, **kwargs).arguments)
            scenario.spec = ScenarioSpec(name, arguments, scenario.config)
            return scenario

        REGISTRY[name] = wrapper
        return wrapper
    return decorate


def with_config(scenario: Scenario, **overrides) -> Scenario:
    """A copy of ``scenario`` with config fields replaced.

    The standard way tests and benchmarks derive engine variants of one
    experiment — ``with_config(sc, workers=4)`` for the parallel searcher,
    ``with_config(sc, checkpoint_mode="trace")`` for trace-replay
    checkpointing, ``with_config(sc, fast_clone=False,
    hash_memoization=False)`` for the seed-behavior baseline.  The
    scenario's registry spec (if any) is carried over with the new config,
    so derived variants stay shippable to spawn/socket workers.
    """
    config = dataclasses.replace(scenario.config, **overrides)
    derived = Scenario(scenario.topo, scenario.app_factory,
                       scenario.hosts_factory, scenario.properties, config,
                       name=scenario.name)
    if scenario.spec is not None:
        derived.spec = dataclasses.replace(scenario.spec, config=config)
    return derived


MAC_A = MacAddress.from_string("00:00:00:00:00:01")
MAC_B = MacAddress.from_string("00:00:00:00:00:02")
MAC_C = MacAddress.from_string("00:00:00:00:00:03")
IP_A = ip_from_string("10.0.0.1")
IP_B = ip_from_string("10.0.0.2")
IP_C = ip_from_string("10.0.0.3")


def _figure1_topology():
    """Two switches in a line, host A on s1, host B on s2 (Figure 1)."""
    from repro.topo.topology import Topology

    topo = Topology()
    topo.add_switch("s1", [1, 2])
    topo.add_switch("s2", [1, 2])
    topo.add_link("s1", 2, "s2", 1)
    topo.add_host("A", MAC_A, IP_A, "s1", 1)
    topo.add_host("B", MAC_B, IP_B, "s2", 2)
    return topo


@registered("ping")
def ping_experiment(pings: int = 2, app_factory=None,
                    config: NiceConfig | None = None,
                    distinct_flows: bool = False,
                    identical_pings: bool = False,
                    max_pkt_sequence: int | None = None,
                    max_outstanding: int | None = None) -> Scenario:
    """Section 7 workload: A sends `pings` layer-2 pings to B; B replies.

    Symbolic execution is off (as in Table 1): the ping packets are scripted.
    ``distinct_flows`` gives each concurrent ping its own MAC pair, so the
    MAC-learning switch installs one disjoint rule pair per ping — the
    regime in which the canonical flow-table representation pays off
    (Table 1's ρ) and in which pyswitch "treats packets with different
    destination MAC addresses independently" for FLOW-IR (Section 4).
    """
    topo = _figure1_topology()
    if app_factory is None:
        app_factory = PySwitch
    if config is None:
        config = NiceConfig()
    config = dataclasses.replace(
        config,
        use_symbolic_execution=False,
        # PKT-SEQ bounds sized to the workload by default; the explicit
        # keyword arguments override (the burst-bound ablation sweep).
        max_pkt_sequence=(max_pkt_sequence if max_pkt_sequence is not None
                          else max(config.max_pkt_sequence, 2 * pings)),
        max_outstanding=(max_outstanding if max_outstanding is not None
                         else max(config.max_outstanding, pings)),
        stop_at_first_violation=False,
    )
    if config.strategy == "FLOW-IR" and "is_same_flow" not in config.extra:
        config.extra = dict(config.extra)
        config.extra["is_same_flow"] = _ping_is_same_flow

    def ping_macs(i: int) -> tuple[MacAddress, MacAddress]:
        if not distinct_flows:
            return MAC_A, MAC_B
        return (MacAddress((0, 0, 0, 0, 0x10, 2 * i)),
                MacAddress((0, 0, 0, 0, 0x20, 2 * i)))

    def hosts_factory():
        script = []
        for i in range(pings):
            src, dst = ping_macs(i)
            tag = "" if identical_pings and not distinct_flows else str(i)
            script.append(l2_ping(src, dst, payload=f"ping{tag}"))
        client = Client("A", MAC_A, IP_A, script=script,
                        symbolic_client=False)
        client.ordered_script = False  # the pings are *concurrent*
        return [client, PingResponder("B", MAC_B, IP_B)]

    return Scenario(topo, app_factory, hosts_factory, [], config,
                    name=f"ping-{pings}")


def _ping_is_same_flow(packet_a, packet_b) -> bool:
    """Each ping/pong exchange is an independent group: ping *i* and its
    pong share the numeric tag in the payload."""
    def tag(packet):
        text = packet.payload
        for prefix in ("ping", "pong"):
            if text.startswith(prefix):
                return text[len(prefix):]
        return text

    return tag(packet_a) == tag(packet_b)


# ----------------------------------------------------------------------
# PySwitch bug scenarios (Section 8.1)
# ----------------------------------------------------------------------

@registered("pyswitch-mobile")
def pyswitch_mobile(app_factory=None,
                    config: NiceConfig | None = None) -> Scenario:
    """BUG-I: B moves while A keeps streaming; stale rule black-holes.

    One switch with three ports; B moves from port 2 to port 3.
    """
    from repro.topo.topology import Topology

    topo = Topology()
    topo.add_switch("s1", [1, 2, 3])
    topo.add_host("A", MAC_A, IP_A, "s1", 1)
    topo.add_host("B", MAC_B, IP_B, "s1", 2)
    if app_factory is None:
        app_factory = PySwitch
    if config is None:
        config = NiceConfig()
    config = dataclasses.replace(config, max_pkt_sequence=3,
                                 max_outstanding=3)

    def hosts_factory():
        return [
            Client("A", MAC_A, IP_A,
                   script=[l2_ping(MAC_A, MAC_B, payload=f"s{i}")
                           for i in range(3)],
                   symbolic_client=False),
            MobileHost("B", MAC_B, IP_B, moves=[("s1", 3)],
                       script=[l2_ping(MAC_B, MAC_A, payload="hello")]),
        ]

    return Scenario(topo, app_factory, hosts_factory,
                    [NoBlackHoles()], config, name="pyswitch-mobile")


@registered("pyswitch-direct-path")
def pyswitch_direct_path(app_factory=None,
                         config: NiceConfig | None = None) -> Scenario:
    """BUG-II: A->B then B->A exchange; third packet still hits the
    controller (StrictDirectPaths)."""
    from repro.topo.topology import Topology

    topo = Topology()
    topo.add_switch("s1", [1, 2])
    topo.add_host("A", MAC_A, IP_A, "s1", 1)
    topo.add_host("B", MAC_B, IP_B, "s1", 2)
    if app_factory is None:
        app_factory = PySwitch
    if config is None:
        config = NiceConfig()
    # Raise the PKT-SEQ bounds to what the bug needs, but respect a caller
    # who explicitly tightened them (e.g. the bound-sweep ablations).
    defaults = NiceConfig()
    config = dataclasses.replace(
        config,
        max_pkt_sequence=(3 if config.max_pkt_sequence == defaults.max_pkt_sequence
                          else config.max_pkt_sequence),
        max_outstanding=(2 if config.max_outstanding == defaults.max_outstanding
                         else config.max_outstanding),
    )

    def hosts_factory():
        from repro.hosts.server import EchoServer

        return [
            Client("A", MAC_A, IP_A, symbolic_client=True),
            EchoServer("B", MAC_B, IP_B),
        ]

    return Scenario(topo, app_factory, hosts_factory,
                    [StrictDirectPaths()], config,
                    name="pyswitch-direct-path")


@registered("pyswitch-loop")
def pyswitch_loop(app_factory=None,
                  config: NiceConfig | None = None) -> Scenario:
    """BUG-III: flooding on a three-switch cycle loops forever
    (NoForwardingLoops)."""
    from repro.topo.topology import Topology

    topo = Topology()
    topo.add_switch("s1", [1, 2, 3])
    topo.add_switch("s2", [1, 2, 3])
    topo.add_switch("s3", [1, 2, 3])
    topo.add_link("s1", 2, "s2", 1)
    topo.add_link("s2", 2, "s3", 1)
    topo.add_link("s3", 2, "s1", 3)
    topo.add_host("A", MAC_A, IP_A, "s1", 1)
    topo.add_host("B", MAC_B, IP_B, "s2", 3)
    if app_factory is None:
        app_factory = PySwitch
    if config is None:
        config = NiceConfig()
    config = dataclasses.replace(config, max_pkt_sequence=1,
                                 max_outstanding=1)

    def hosts_factory():
        return [
            Client("A", MAC_A, IP_A,
                   script=[l2_ping(MAC_A, MAC_B)], symbolic_client=False),
            Client("B", MAC_B, IP_B, script=[], symbolic_client=False),
        ]

    return Scenario(topo, app_factory, hosts_factory,
                    [NoForwardingLoops()], config, name="pyswitch-loop")


# ----------------------------------------------------------------------
# Hostile scenarios (failure-containment test family, ISSUE 8)
# ----------------------------------------------------------------------


@registered("hostile")
def hostile_scenario(mode: str = "benign", arm_file: str | None = None,
                     pings: int = 1, ballast_mb: int = 64,
                     spare_quarantine: bool = True,
                     config: NiceConfig | None = None) -> Scenario:
    """A ping workload whose controller misbehaves on a poison packet.

    Host A sends one ``poison0``-tagged ping plus ``pings`` ordinary pings
    to host B through a single :class:`~repro.apps.hostile.HostileApp`
    switch.  The poison packet's ``packet_in`` misbehaves per ``mode``
    (raise / hang / crash / oom — see :mod:`repro.apps.hostile`), gated by
    the ``arm_file`` shot counter so the induced failures are bounded and
    the armed parallel run stays bit-comparable to a benign serial
    baseline.  All kwargs are picklable, so the scenario has a portable
    spec and runs on every transport.
    """
    from repro.apps.hostile import POISON, HostileApp
    from repro.topo.topology import Topology

    topo = Topology()
    topo.add_switch("s1", [1, 2])
    topo.add_host("A", MAC_A, IP_A, "s1", 1)
    topo.add_host("B", MAC_B, IP_B, "s1", 2)
    if config is None:
        config = NiceConfig()
    config = dataclasses.replace(
        config,
        use_symbolic_execution=False,
        max_pkt_sequence=max(config.max_pkt_sequence, 2 * (pings + 1)),
        max_outstanding=max(config.max_outstanding, pings + 1),
        stop_at_first_violation=False,
    )

    def app_factory():
        return HostileApp(mode=mode, arm_file=arm_file,
                          ballast_mb=ballast_mb,
                          spare_quarantine=spare_quarantine)

    def hosts_factory():
        # The poison ping rides alongside the ordinary ones; the responder
        # ignores it (no "ping" prefix), so it adds exactly one poisoned
        # controller handler execution per interleaving, no replies.
        script = [l2_ping(MAC_A, MAC_B, payload=f"{POISON}0")]
        script += [l2_ping(MAC_A, MAC_B, payload=f"ping{i}")
                   for i in range(pings)]
        client = Client("A", MAC_A, IP_A, script=script,
                        symbolic_client=False)
        client.ordered_script = False
        return [client, PingResponder("B", MAC_B, IP_B)]

    return Scenario(topo, app_factory, hosts_factory, [], config,
                    name=f"hostile-{mode}")


# ----------------------------------------------------------------------
# Load balancer scenarios (Section 8.2)
# ----------------------------------------------------------------------

VIP = ip_from_string("10.0.0.100")
VIP_MAC = MacAddress.from_string("00:00:00:00:01:00")
MAC_R1 = MacAddress.from_string("00:00:00:00:00:11")
MAC_R2 = MacAddress.from_string("00:00:00:00:00:12")
IP_R1 = ip_from_string("10.0.0.11")
IP_R2 = ip_from_string("10.0.0.12")


def _lb_topology():
    from repro.topo.topology import Topology

    topo = Topology()
    topo.add_switch("s1", [1, 2, 3])
    topo.add_host("C", MAC_A, IP_A, "s1", 1)
    topo.add_host("R1", MAC_R1, IP_R1, "s1", 2)
    topo.add_host("R2", MAC_R2, IP_R2, "s1", 3)
    return topo


def _lb_replicas() -> list[ReplicaSpec]:
    return [ReplicaSpec("R1", MAC_R1, IP_R1, 2),
            ReplicaSpec("R2", MAC_R2, IP_R2, 3)]


@registered("loadbalancer")
def loadbalancer_scenario(bug_iv: bool = True, bug_v: bool = True,
                          bug_vi: bool = True, bug_vii: bool = True,
                          properties=None, use_arp_script: bool = False,
                          config: NiceConfig | None = None,
                          symbolic: bool = True) -> Scenario:
    """One client, two replicas, one switch; a policy change mid-run.

    ``use_arp_script`` adds a server-generated ARP request to exercise the
    second half of BUG-VI.
    """
    topo = _lb_topology()
    if config is None:
        config = NiceConfig()
    config = dataclasses.replace(
        config,
        max_pkt_sequence=max(config.max_pkt_sequence, 2),
        max_outstanding=max(config.max_outstanding, 2),
        use_symbolic_execution=symbolic,
    )

    def app_factory():
        return LoadBalancer(
            switch="s1", client_port=1, client_ip=IP_A, vip=VIP,
            vip_mac=VIP_MAC, replicas=_lb_replicas(),
            bug_iv=bug_iv, bug_v=bug_v, bug_vi=bug_vi, bug_vii=bug_vii,
        )

    def hosts_factory():
        client_script = []
        if not symbolic:
            client_script = [
                tcp_packet(MAC_A, VIP_MAC, IP_A, VIP, 1000, 80,
                           flags=TCP_SYN),
                tcp_packet(MAC_A, VIP_MAC, IP_A, VIP, 1000, 80,
                           flags=TCP_ACK),
            ]
        server_script = []
        if use_arp_script:
            server_script = [arp_request(MAC_R1, IP_R1, IP_A)]
        return [
            Client("C", MAC_A, IP_A, script=client_script,
                   symbolic_client=symbolic),
            VipServer("R1", MAC_R1, IP_R1, VIP, VIP_MAC,
                      script=server_script),
            VipServer("R2", MAC_R2, IP_R2, VIP, VIP_MAC),
        ]

    if properties is None:
        properties = [NoForgottenPackets(), FlowAffinity(["R1", "R2"])]
    return Scenario(topo, app_factory, hosts_factory, properties, config,
                    name="loadbalancer")


# ----------------------------------------------------------------------
# Energy-efficient traffic engineering scenarios (Section 8.3)
# ----------------------------------------------------------------------

MAC_S = MacAddress.from_string("00:00:00:00:00:21")
MAC_T1 = MacAddress.from_string("00:00:00:00:00:22")
MAC_T2 = MacAddress.from_string("00:00:00:00:00:23")
IP_S = ip_from_string("10.0.1.1")
IP_T1 = ip_from_string("10.0.1.2")
IP_T2 = ip_from_string("10.0.1.3")


def _te_topology():
    """Three switches in a triangle; sender on s1, receivers on s2."""
    from repro.topo.topology import Topology

    topo = Topology()
    topo.add_switch("s1", [1, 2, 3])
    topo.add_switch("s2", [1, 2, 3, 4])
    topo.add_switch("s3", [1, 2])
    topo.add_link("s1", 2, "s2", 1)   # always-on link
    topo.add_link("s1", 3, "s3", 1)   # on-demand leg 1
    topo.add_link("s3", 2, "s2", 2)   # on-demand leg 2
    topo.add_host("S", MAC_S, IP_S, "s1", 1)
    topo.add_host("T1", MAC_T1, IP_T1, "s2", 3)
    topo.add_host("T2", MAC_T2, IP_T2, "s2", 4)
    return topo


def _te_tables():
    always_on = {
        IP_T1: [("s1", 2), ("s2", 3)],
        IP_T2: [("s1", 2), ("s2", 4)],
    }
    on_demand = {
        IP_T1: [("s1", 3), ("s3", 2), ("s2", 3)],
        IP_T2: [("s1", 3), ("s3", 2), ("s2", 4)],
    }
    return always_on, on_demand


@registered("energy-te")
def energy_te_scenario(bug_viii: bool = True, bug_ix: bool = True,
                       bug_x: bool = True, bug_xi: bool = True,
                       properties=None, polls: int = 2,
                       config: NiceConfig | None = None) -> Scenario:
    """The Section 8.3 test: triangle topology, stats-driven state."""
    topo = _te_topology()
    always_on, on_demand = _te_tables()
    if config is None:
        config = NiceConfig()
    config = dataclasses.replace(
        config,
        max_pkt_sequence=max(config.max_pkt_sequence, 2),
        max_outstanding=max(config.max_outstanding, 2),
        # The stats handler's behavior depends on counters, so merging
        # states across counter values would be unsound here.
        hash_counters=True,
    )

    def app_factory():
        return EnergyTrafficEngineering(
            ingress="s1", monitor_port=2,
            always_on=always_on, on_demand=on_demand, polls=polls,
            bug_viii=bug_viii, bug_ix=bug_ix, bug_x=bug_x, bug_xi=bug_xi,
        )

    def hosts_factory():
        return [
            Client("S", MAC_S, IP_S, symbolic_client=True),
            Client("T1", MAC_T1, IP_T1, script=[], symbolic_client=False),
            Client("T2", MAC_T2, IP_T2, script=[], symbolic_client=False),
        ]

    if properties is None:
        properties = [NoForgottenPackets(),
                      UseCorrectRoutingTable(expected_path)]
    return Scenario(topo, app_factory, hosts_factory, properties, config,
                    name="energy-te")
