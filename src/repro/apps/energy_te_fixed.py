"""The traffic-engineering application with all Section 8.3 fixes applied.

* BUG-VIII fix — release the triggering packet after installing the path;
* BUG-IX fix — handle packets that surface at intermediate switches by
  forwarding them along the flow's path;
* BUG-X fix — abandon the cached "extra table" and choose the routing table
  per flow (alternating under high load so flows split evenly);
* BUG-XI fix — when the reporting switch is absent from the current paths,
  fall back to the table recorded for the flow when it was first routed.
"""

from __future__ import annotations

from repro.apps.energy_te import EnergyTrafficEngineering


class EnergyTrafficEngineeringFixed(EnergyTrafficEngineering):
    """All bugs disabled; see :class:`repro.apps.energy_te.
    EnergyTrafficEngineering`."""

    name = "energy_te_fixed"

    def __init__(self, *args, **kwargs):
        for flag in ("bug_viii", "bug_ix", "bug_x", "bug_xi"):
            kwargs.setdefault(flag, False)
        super().__init__(*args, **kwargs)
