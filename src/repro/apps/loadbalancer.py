"""The web server load balancer of Section 8.2 (after Wang et al. [9]).

The application divides client traffic destined to a *virtual IP* over
server replicas using wildcard rules, and can transition between
load-balancing policies at run time: during a transition the old wildcard
rules are replaced by rules that send packets to the controller, which
inspects the "next" packet of each flow — a SYN means a new flow that should
follow the *new* policy; anything else belongs to an ongoing transfer that
must keep its *old* replica.

The reimplementation reproduces the four bugs NICE found in the original
1209-LoC application (which had been unit-tested!):

* **BUG-IV** — after reconfiguration, the handler installs the microflow
  rule but never instructs the switch to forward the packet that triggered
  the ``packet_in`` (NoForgottenPackets);
* **BUG-V** — the policy switch sends (i) remove-old-rule then (ii)
  install-redirect-rule; packets arriving between the two match nothing and
  reach the controller with reason ``NO_MATCH``, which the handler ignores
  (NoForgottenPackets);
* **BUG-VI** — the controller answers ARP requests on behalf of the
  replicas but forgets to discard the buffered request (and similarly for
  server-generated ARP) (NoForgottenPackets);
* **BUG-VII** — a duplicate SYN during the transition is treated as a brand
  new flow and re-assigned under the new policy, splitting one TCP
  connection across replicas (FlowAffinity).

Constructor flags turn each bug off individually so the benchmark harness
can reproduce the paper's fix-one-find-next narrative;
:class:`repro.apps.loadbalancer_fixed.LoadBalancerFixed` disables all four.
"""

from __future__ import annotations

import copy

from repro.controller.app import App
from repro.hosts.base import Host
from repro.openflow.actions import ActionController, ActionOutput
from repro.openflow.match import Match
from repro.openflow.messages import OFPR_ACTION
from repro.openflow.packet import (
    ARP_REQUEST,
    ETH_TYPE_ARP,
    ETH_TYPE_IP,
    IPPROTO_TCP,
    MacAddress,
    Packet,
    TCP_ACK,
    TCP_SYN,
    arp_reply,
    tcp_packet,
)
from repro.openflow.rules import PERMANENT

#: Rule priorities: wildcard policy rules sit between the low-priority
#: redirect net and the high-priority per-flow microflow rules.
PRIORITY_MICROFLOW = 0xA000
PRIORITY_WILDCARD = 0x8000
PRIORITY_REDIRECT = 0x6000


class ReplicaSpec:
    """One server replica: where it is attached and its addresses."""

    def __init__(self, name: str, mac: MacAddress, ip: int, port: int):
        self.name = name
        self.mac = mac
        self.ip = ip
        self.port = port

    def __repr__(self):
        return f"ReplicaSpec({self.name}, port={self.port})"


class LoadBalancer(App):
    """Wildcard-rule server load balancer with run-time policy transitions."""

    name = "loadbalancer"

    def __init__(self, switch: str, client_port: int, client_ip: int,
                 vip: int, vip_mac: MacAddress, replicas: list[ReplicaSpec],
                 initial_policy: int = 0, target_policy: int = 1,
                 bug_iv: bool = True, bug_v: bool = True,
                 bug_vi: bool = True, bug_vii: bool = True):
        self.switch = switch
        self.client_port = client_port
        self.client_ip = client_ip
        self.vip = vip
        self.vip_mac = vip_mac
        self.replicas = list(replicas)
        #: A policy is simply the index of the replica that receives *new*
        #: traffic (the paper's weight-split generalizes; one client needs
        #: only one wildcard rule).
        self.current_policy = initial_policy
        self.target_policy = target_policy
        self.mode = "normal"
        self.old_policy = initial_policy
        #: Flow -> replica index, learned during the transition.
        self.flow_assignments: dict = {}
        self.bug_iv = bug_iv
        self.bug_v = bug_v
        self.bug_vi = bug_vi
        self.bug_vii = bug_vii

    # ------------------------------------------------------------------
    # Symbolic-execution hints
    # ------------------------------------------------------------------

    def symbolic_domains(self) -> dict:
        """Domain knowledge: clients talk to the virtual IP on port 80."""
        return {
            "ip_dst": [self.vip],
            "eth_dst": [self.vip_mac.to_int()],
            "tp_dst": [80],
        }

    @staticmethod
    def is_same_flow(packet_a, packet_b) -> bool:
        """FLOW-IR hook; ``packet_a`` is the probe, ``packet_b`` the
        reference.

        The application's own flow notion: a SYN means a *new* flow, so a
        SYN probe never belongs to an existing group — even for a matching
        5-tuple.  This is exactly the assumption that makes FLOW-IR miss
        BUG-VII (Section 8.4: "the duplicate SYN is treated as a new
        independent flow"), because the reduction then never interleaves
        the duplicate SYN into the ongoing connection's event orderings.
        """
        if packet_a.flow_key() != packet_b.flow_key():
            return False
        if packet_a is packet_b:
            return True
        if packet_a.tcp_flags & TCP_SYN:
            return False
        return True

    # ------------------------------------------------------------------
    # Setup and reconfiguration
    # ------------------------------------------------------------------

    def clone(self):
        """Fast checkpoint copy: scalars plus the flow-assignment map; the
        replica specs are static configuration and stay shared."""
        new = copy.copy(self)
        new.flow_assignments = dict(self.flow_assignments)
        return new

    def boot(self, api, topo):
        self._install_policy_rules(api, self.current_policy)
        # Return traffic from the replicas back to the client.
        api.install_rule(
            self.switch,
            Match(dl_type=ETH_TYPE_IP, nw_dst=self.client_ip),
            [ActionOutput(self.client_port)],
            hard_timer=PERMANENT,
            priority=PRIORITY_WILDCARD,
        )

    def _install_policy_rules(self, api, policy: int) -> None:
        replica = self.replicas[policy]
        api.install_rule(
            self.switch,
            self._vip_wildcard(),
            [ActionOutput(replica.port)],
            hard_timer=PERMANENT,
            priority=PRIORITY_WILDCARD,
        )

    def _vip_wildcard(self) -> Match:
        # All TCP traffic to the virtual IP, matching exactly the traffic
        # the packet_in handler claims responsibility for.
        return Match(dl_type=ETH_TYPE_IP, nw_proto=IPPROTO_TCP,
                     nw_dst=self.vip)

    def external_events(self) -> list[str]:
        return ["reconfigure"]

    def handle_event(self, api, event: str) -> None:
        if event != "reconfigure":
            return
        self.mode = "transition"
        self.old_policy = self.current_policy
        self.current_policy = self.target_policy
        redirect = self._vip_wildcard()
        if self.bug_v:
            # BUG-V ordering: remove the old wildcard rule *first*, leaving a
            # window in which VIP packets match nothing.
            api.delete_rules(self.switch, self._vip_wildcard(),
                             priority=PRIORITY_WILDCARD, strict=True)
            api.install_rule(self.switch, redirect, [ActionController()],
                             hard_timer=PERMANENT, priority=PRIORITY_REDIRECT)
        else:
            # The paper's fix: install the new (lower-priority) redirect rule
            # before deleting the old one — no window.
            api.install_rule(self.switch, redirect, [ActionController()],
                             hard_timer=PERMANENT, priority=PRIORITY_REDIRECT)
            api.delete_rules(self.switch, self._vip_wildcard(),
                             priority=PRIORITY_WILDCARD, strict=True)

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------

    def packet_in(self, api, sw_id, inport, pkt, bufid, reason):
        if pkt.type == ETH_TYPE_ARP:
            self._handle_arp(api, sw_id, inport, pkt, bufid)
            return
        if pkt.type == ETH_TYPE_IP and pkt.nw_proto == IPPROTO_TCP \
                and pkt.ip_dst == self.vip:
            self._handle_vip_tcp(api, sw_id, inport, pkt, bufid, reason)
            return
        # Traffic this application is not responsible for: consume it.
        api.drop_buffer(sw_id, bufid)

    def _handle_arp(self, api, sw_id, inport, pkt, bufid):
        if pkt.arp_op == ARP_REQUEST and pkt.ip_dst == self.vip:
            reply = arp_reply(self.vip_mac, self._concrete_mac(pkt.src),
                              self.vip, self._concrete_int(pkt.ip_src))
            api.send_packet_out(sw_id, pkt=reply, actions=[ActionOutput(inport)])
            # BUG-VI: despite sending the correct reply, the buffered ARP
            # request is never released from the switch.
            if not self.bug_vi:
                api.drop_buffer(sw_id, bufid)
            return
        # Server-generated (or other) ARP: flood it so resolution proceeds.
        if self.bug_vi:
            # BUG-VI twin: the original code floods a *copy* and forgets the
            # buffered original.
            api.send_packet_out(sw_id, pkt=pkt.copy(), actions=["flood"])
        else:
            api.flood_packet(sw_id, None, bufid)

    def _handle_vip_tcp(self, api, sw_id, inport, pkt, bufid, reason):
        if self.mode != "transition":
            # Normal mode: the wildcard rules should handle VIP traffic; a
            # packet here is a late straggler.  Route it per current policy.
            replica = self.replicas[self.current_policy]
            self._install_microflow(api, pkt, replica)
            api.send_packet_out(sw_id, pkt=None, bufid=bufid)
            return
        if reason != OFPR_ACTION and self.bug_v:
            # BUG-V: the handler expects only redirect-rule packet-ins
            # (reason ACTION) and silently ignores NO_MATCH arrivals,
            # leaving them buffered at the switch.
            return
        flow = (self._concrete_int(pkt.ip_src), self._concrete_int(pkt.tp_src))
        if pkt.tcp_flags & TCP_SYN:
            if self.bug_vii or flow not in self.flow_assignments:
                # BUG-VII: a SYN *always* means a new flow — a duplicate SYN
                # re-assigns an ongoing connection to the new policy.
                self.flow_assignments[flow] = self.current_policy
            replica_index = self.flow_assignments[flow]
        else:
            replica_index = self.flow_assignments.get(flow, self.old_policy)
            self.flow_assignments[flow] = replica_index
        replica = self.replicas[replica_index]
        self._install_microflow(api, pkt, replica)
        if not self.bug_iv:
            api.send_packet_out(sw_id, pkt=None, bufid=bufid)
        # BUG-IV: the triggering packet is left in the switch buffer.

    def _install_microflow(self, api, pkt, replica: ReplicaSpec) -> None:
        match = Match(
            dl_type=ETH_TYPE_IP,
            nw_proto=IPPROTO_TCP,
            nw_src=self._concrete_int(pkt.ip_src),
            nw_dst=self.vip,
            tp_src=self._concrete_int(pkt.tp_src),
            tp_dst=self._concrete_int(pkt.tp_dst),
        )
        api.install_rule(self.switch, match, [ActionOutput(replica.port)],
                         hard_timer=PERMANENT, priority=PRIORITY_MICROFLOW)

    @staticmethod
    def _concrete_int(value) -> int:
        return int(value)

    @staticmethod
    def _concrete_mac(value):
        concrete = getattr(value, "concrete", value)
        return concrete


class VipServer(Host):
    """A replica host: accepts TCP to the virtual IP and replies as the VIP."""

    def __init__(self, name: str, mac: MacAddress, ip: int, vip: int,
                 vip_mac: MacAddress,
                 script: list[Packet] | None = None):
        super().__init__(name, mac, ip, script=script)
        self.vip = vip
        self.vip_mac = vip_mac

    def on_receive(self, packet: Packet) -> list[Packet]:
        if packet.eth_type != ETH_TYPE_IP or packet.nw_proto != IPPROTO_TCP:
            return []
        if packet.ip_dst != self.vip:
            return []
        flags = TCP_SYN | TCP_ACK if packet.tcp_flags & TCP_SYN else TCP_ACK
        reply = tcp_packet(
            src=self.vip_mac,
            dst=packet.eth_src,
            ip_src=self.vip,
            ip_dst=packet.ip_src,
            tp_src=packet.tp_dst,
            tp_dst=packet.tp_src,
            flags=flags,
        )
        return [reply]

    def canonical(self) -> tuple:
        return super().canonical() + (self.vip,)
