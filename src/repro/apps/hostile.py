"""Hostile controller applications for the failure-containment suite.

The paper's engine assumes model code is merely *buggy* — handlers that
install the wrong rule, not handlers that never return.  The containment
layer (ISSUE 8) drops that assumption, and this module supplies the
adversaries it is tested against: a MAC-learning switch that misbehaves
when it sees a *poison* packet (payload tagged ``poison*``).

Misbehavior modes:

* ``raise`` — the handler raises, every time it sees poison.  This is a
  deterministic *model bug*: the engine must contain it as a replayable
  :class:`~repro.mc.search.ModelError` counterexample, identically in the
  serial and parallel engines.
* ``hang`` — a pure-Python infinite loop.  Pure Python on purpose: the
  GIL keeps preempting it, so the worker's heartbeat thread stays alive
  and the master sees a *responsive process making no progress* — exactly
  the failure the task deadline (not the heartbeat) exists to catch.
* ``crash`` — ``SIGKILL`` to the worker's own process mid-handler.
* ``oom`` — grow a module-global ballast list until the worker's memory
  watchdog sheds its cache and recycles the process.

``hang``/``crash``/``oom`` would break the *serial* engine too (nothing
contains a hung master), so they fire only when **armed**: an arm-count
file holds how many times the misbehavior may still fire, and each firing
atomically decrements it.  A count of ``-1`` is sticky — fire every time —
which is how the tests drive quarantine to exhaustion.  The serial
baseline simply runs with the count at zero (or ``mode="benign"``) and the
armed parallel run must reproduce its counters bit-for-bit once the
containment machinery has absorbed the induced failures.
"""

from __future__ import annotations

import os
import signal
import tempfile

from repro.apps.pyswitch import PySwitch

#: Payload prefix that triggers misbehavior.
POISON = "poison"

MODE_BENIGN = "benign"
MODE_RAISE = "raise"
MODE_HANG = "hang"
MODE_CRASH = "crash"
MODE_OOM = "oom"
MODES = (MODE_BENIGN, MODE_RAISE, MODE_HANG, MODE_CRASH, MODE_OOM)

#: Set (to "1") in the quarantine sandbox's environment by
#: ``repro.mc.worker.quarantine_worker_main``.  A hostile app with
#: ``spare_quarantine=True`` behaves inside the sandbox, which is how the
#: tests model a *flaky* poison task: one that killed every fleet worker
#: it touched but succeeds on the isolated retry.
QUARANTINE_ENV = "NICE_QUARANTINE"

#: OOM ballast lives at module scope, NOT on the app instance: controller
#: state is canonically hashed (``App.state_vars`` serializes
#: ``vars(app)``), and a hundred megabytes of bytearray on the instance
#: would both break hashing and be cloned on every state checkpoint.
_BALLAST: list = []


def consume_arm(path) -> bool:
    """Consume one shot from an arm-count file; return whether to fire.

    The file holds a decimal count.  ``-1`` is sticky (always fire, never
    decremented); ``0``, a missing file, or ``path=None`` mean disarmed.
    The decrement is atomic (temp file + ``os.replace``) so concurrent
    workers cannot corrupt the count — at worst two workers read the same
    value and the misbehavior overshoots by one, which the containment
    layer must absorb anyway.
    """
    if path is None:
        return False
    try:
        with open(path) as handle:
            count = int(handle.read().strip() or 0)
    except (OSError, ValueError):
        return False
    if count < 0:
        return True
    if count == 0:
        return False
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp = tempfile.mkstemp(dir=directory, prefix=".arm-")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(str(count - 1))
        os.replace(temp, path)
    except OSError:
        try:
            os.unlink(temp)
        except OSError:
            pass
    return True


class HostileApp(PySwitch):
    """pyswitch that misbehaves on ``poison*`` packets (see module doc)."""

    name = "hostile"

    def __init__(self, mode: str = MODE_BENIGN, arm_file: str | None = None,
                 ballast_mb: int = 64, spare_quarantine: bool = True,
                 **kwargs):
        super().__init__(**kwargs)
        if mode not in MODES:
            raise ValueError(f"unknown hostile mode {mode!r};"
                             f" expected one of {MODES}")
        self.mode = mode
        self.arm_file = arm_file
        self.ballast_mb = ballast_mb
        self.spare_quarantine = spare_quarantine

    def packet_in(self, api, sw_id, inport, pkt, bufid, reason):
        if str(pkt.payload).startswith(POISON):
            self._misbehave()
        super().packet_in(api, sw_id, inport, pkt, bufid, reason)

    def _misbehave(self) -> None:
        mode = self.mode
        if mode == MODE_BENIGN:
            return
        if mode == MODE_RAISE:
            # Deterministic model bug — no arming, no process damage; the
            # engine must turn this into a ModelError counterexample.
            raise RuntimeError("hostile handler refused the poison packet")
        if self.spare_quarantine and os.environ.get(QUARANTINE_ENV):
            return
        if not consume_arm(self.arm_file):
            return
        if mode == MODE_HANG:
            while True:  # pragma: no cover - killed from outside
                pass
        if mode == MODE_CRASH:
            os.kill(os.getpid(), signal.SIGKILL)
        if mode == MODE_OOM:
            _BALLAST.append(bytearray(self.ballast_mb * 1024 * 1024))
