"""Fixed variants of pyswitch, as discussed in Section 8.1.

* :class:`PySwitchFixed` — addresses BUG-I (hard timeout so stale rules
  expire; the paper notes this still leaves *transient* loss) and BUG-II
  (installs the direct-path rule for the reply direction too, in the
  *correct* order: the reverse rule first, then the packet release — the
  paper warns the naive opposite order introduces a new race).
* :class:`PySwitchNaiveFix` — the paper's cautionary tale: the naive BUG-II
  fix that adds the reverse rule *after* releasing the packet, which can let
  the reply overtake the installation and still send a packet to the
  controller.
* :class:`PySwitchSpanningTree` — addresses BUG-III by flooding only along a
  spanning tree of the topology.
"""

from __future__ import annotations

from repro.controller.api import OUTPUT
from repro.apps.pyswitch import PySwitch
from repro.openflow.actions import ActionOutput
from repro.openflow.match import DL_DST, DL_SRC, DL_TYPE, IN_PORT
from repro.openflow.rules import PERMANENT
from repro.topo.spanning_tree import spanning_tree_ports


class PySwitchFixed(PySwitch):
    """Hard-timeout rules + bidirectional install in the safe order."""

    name = "pyswitch_fixed"

    def __init__(self, soft_timer: int = 5, hard_timer: int = 30):
        super().__init__(soft_timer=soft_timer, hard_timer=hard_timer)

    def packet_in(self, api, sw_id, inport, pkt, bufid, reason):
        mactable = self.ctrl_state[sw_id]
        is_bcast_src = pkt.src[0] & 1
        is_bcast_dst = pkt.dst[0] & 1
        if not is_bcast_src:
            mactable[pkt.src] = inport
        if (not is_bcast_dst) and (pkt.dst in mactable):
            outport = mactable[pkt.dst]
            if outport != inport:
                # The correct BUG-II fix: install the rule for the *other*
                # direction (traffic that will answer this packet) before
                # releasing the packet that triggers the answer.
                reverse = {DL_SRC: pkt.dst, DL_DST: pkt.src,
                           DL_TYPE: pkt.type, IN_PORT: outport}
                api.install_rule(sw_id, reverse, [OUTPUT, inport],
                                 soft_timer=self.soft_timer,
                                 hard_timer=self.hard_timer)
                match = {DL_SRC: pkt.src, DL_DST: pkt.dst,
                         DL_TYPE: pkt.type, IN_PORT: inport}
                api.install_rule(sw_id, match, [OUTPUT, outport],
                                 soft_timer=self.soft_timer,
                                 hard_timer=self.hard_timer)
                api.send_packet_out(sw_id, pkt, bufid)
                return
        api.flood_packet(sw_id, pkt, bufid)


class PySwitchNaiveFix(PySwitch):
    """The naive BUG-II fix: reverse rule installed *after* the release.

    "Since the two rules are not installed atomically, installing the rules
    in this order can allow the packet from B to reach A before the switch
    installs the second rule" — still violates StrictDirectPaths.
    """

    name = "pyswitch_naive_fix"

    def packet_in(self, api, sw_id, inport, pkt, bufid, reason):
        mactable = self.ctrl_state[sw_id]
        is_bcast_src = pkt.src[0] & 1
        is_bcast_dst = pkt.dst[0] & 1
        if not is_bcast_src:
            mactable[pkt.src] = inport
        if (not is_bcast_dst) and (pkt.dst in mactable):
            outport = mactable[pkt.dst]
            if outport != inport:
                match = {DL_SRC: pkt.src, DL_DST: pkt.dst,
                         DL_TYPE: pkt.type, IN_PORT: inport}
                api.install_rule(sw_id, match, [OUTPUT, outport],
                                 soft_timer=self.soft_timer,
                                 hard_timer=self.hard_timer)
                api.send_packet_out(sw_id, pkt, bufid)
                reverse = {DL_SRC: pkt.dst, DL_DST: pkt.src,
                           DL_TYPE: pkt.type, IN_PORT: outport}
                api.install_rule(sw_id, reverse, [OUTPUT, inport],
                                 soft_timer=self.soft_timer,
                                 hard_timer=self.hard_timer)
                return
        api.flood_packet(sw_id, pkt, bufid)


class PySwitchSpanningTree(PySwitch):
    """Floods only along a spanning tree: the BUG-III fix."""

    name = "pyswitch_stp"

    def __init__(self, soft_timer: int = 5, hard_timer: int = PERMANENT):
        super().__init__(soft_timer=soft_timer, hard_timer=hard_timer)
        self.flood_ports: dict = {}

    def boot(self, api, topo):
        self.flood_ports = {
            sw: sorted(ports) for sw, ports in spanning_tree_ports(topo).items()
        }

    def packet_in(self, api, sw_id, inport, pkt, bufid, reason):
        mactable = self.ctrl_state[sw_id]
        is_bcast_src = pkt.src[0] & 1
        is_bcast_dst = pkt.dst[0] & 1
        if not is_bcast_src:
            mactable[pkt.src] = inport
        if (not is_bcast_dst) and (pkt.dst in mactable):
            outport = mactable[pkt.dst]
            if outport != inport:
                match = {DL_SRC: pkt.src, DL_DST: pkt.dst,
                         DL_TYPE: pkt.type, IN_PORT: inport}
                api.install_rule(sw_id, match, [OUTPUT, outport],
                                 soft_timer=self.soft_timer,
                                 hard_timer=self.hard_timer)
                api.send_packet_out(sw_id, pkt, bufid)
                return
        # Spanning-tree flood: explicit per-port outputs along tree ports.
        tree_ports = self.flood_ports.get(sw_id, [])
        actions = [ActionOutput(port) for port in tree_ports if port != inport]
        api.send_packet_out(sw_id, pkt, bufid, actions=actions or [])
