"""The MAC-learning switch — Figure 3 of the paper, line for line.

The ``packet_in`` handler learns the input port associated with each
non-broadcast source MAC address; if the destination MAC address is known,
it installs a forwarding rule and instructs the switch to send the packet
according to that rule; otherwise it floods the packet.  Switch join/leave
initialize/delete the per-switch MAC table.

This is the application in which NICE uncovers:

* **BUG-I** — host unreachable after moving (NoBlackHoles): the soft
  timeout never expires while the sender keeps transmitting, so a stale
  rule keeps forwarding to the host's old port;
* **BUG-II** — delayed direct path (StrictDirectPaths): only the
  reply-direction rule is installed, so a third packet still goes to the
  controller;
* **BUG-III** — excess flooding (NoForwardingLoops): flooding on a cyclic
  topology without a spanning tree.
"""

from __future__ import annotations

import copy

from repro.controller.app import App
from repro.controller.api import OUTPUT
from repro.openflow.match import DL_DST, DL_SRC, DL_TYPE, IN_PORT
from repro.openflow.rules import PERMANENT


class PySwitch(App):
    """Faithful reimplementation of NOX's pyswitch (98 LoC upstream)."""

    name = "pyswitch"

    def __init__(self, soft_timer: int = 5, hard_timer: int = PERMANENT):
        #: Figure 3, line 1: state is a hashtable, switch id -> MAC table.
        self.ctrl_state: dict = {}
        self.soft_timer = soft_timer
        self.hard_timer = hard_timer

    def clone(self):
        """Fast checkpoint copy: the state is one dict of MAC tables."""
        new = copy.copy(self)
        new.ctrl_state = {sw: dict(table)
                          for sw, table in self.ctrl_state.items()}
        return new

    def switch_join(self, api, sw_id, stats):  # Figure 3, lines 17-19
        if sw_id not in self.ctrl_state:
            self.ctrl_state[sw_id] = {}

    def switch_leave(self, api, sw_id):  # Figure 3, lines 20-22
        if sw_id in self.ctrl_state:
            del self.ctrl_state[sw_id]

    def packet_in(self, api, sw_id, inport, pkt, bufid, reason):
        # Figure 3, lines 2-16.
        mactable = self.ctrl_state[sw_id]
        is_bcast_src = pkt.src[0] & 1
        is_bcast_dst = pkt.dst[0] & 1
        if not is_bcast_src:
            mactable[pkt.src] = inport
        if (not is_bcast_dst) and (pkt.dst in mactable):
            outport = mactable[pkt.dst]
            if outport != inport:
                match = {DL_SRC: pkt.src, DL_DST: pkt.dst,
                         DL_TYPE: pkt.type, IN_PORT: inport}
                actions = [OUTPUT, outport]
                api.install_rule(sw_id, match, actions,
                                 soft_timer=self.soft_timer,
                                 hard_timer=self.hard_timer)
                api.send_packet_out(sw_id, pkt, bufid)
                return
        api.flood_packet(sw_id, pkt, bufid)
