"""Energy-efficient traffic engineering (Section 8.3, after REsPoNse [28]).

The application precomputes two routing tables — an *always-on* table whose
paths can carry all traffic under low demand, and an *on-demand* table used
for the extra traffic under high demand — and makes an online per-flow
choice.  It learns link utilization by querying switches for port
statistics; when utilization crosses a threshold the perceived energy state
flips between ``low`` and ``high``.  Under high load, new flows should split
evenly between the two classes of paths.

Evaluation topology (the paper's): three switches in a triangle, a sender on
the ingress switch, two receivers on the egress switch; the third switch
lies on the on-demand path.

Reproduced bugs:

* **BUG-VIII** — the ``packet_in`` handler installs the end-to-end path but
  never tells the switch to forward the triggering packet
  (NoForgottenPackets);
* **BUG-IX** — the handler implicitly assumes intermediate switches never
  see the flow's first packet; with rule-installation delays, the packet can
  reach the next hop before its rule and is then ignored and left buffered
  (NoForgottenPackets) — a bug that only surfaces under specific event
  orderings;
* **BUG-X** — the port-stats handler caches "the" routing table for the
  current energy state, which forces *all* new flows onto on-demand routes
  under high load instead of splitting them (UseCorrectRoutingTable);
* **BUG-XI** — when load reduces, the handler for stray packets looks the
  reporting switch up in the *current* (always-on) paths only; a switch
  that was on a since-abandoned on-demand path is not found and the packet
  is ignored and left buffered (NoForgottenPackets).
"""

from __future__ import annotations

import copy

from repro.controller.app import App
from repro.openflow.actions import ActionOutput
from repro.openflow.match import Match
from repro.openflow.packet import ETH_TYPE_IP
from repro.openflow.rules import PERMANENT

#: Bytes a monitored link can carry per statistics interval.
LINK_CAPACITY = 10000
#: Utilization percentage above which the network is in the high-load state.
UTILIZATION_THRESHOLD = 70

TABLE_ALWAYS_ON = "always_on"
TABLE_ON_DEMAND = "on_demand"


class EnergyTrafficEngineering(App):
    """REsPoNse-style online path selection over precomputed tables."""

    name = "energy_te"

    def __init__(self, ingress: str, monitor_port: int,
                 always_on: dict, on_demand: dict,
                 polls: int = 2,
                 bug_viii: bool = True, bug_ix: bool = True,
                 bug_x: bool = True, bug_xi: bool = True):
        """``always_on`` / ``on_demand`` map destination IP to the path as a
        list of ``(switch, out_port)`` hops, ingress first."""
        self.ingress = ingress
        self.monitor_port = monitor_port
        self.tables = {
            TABLE_ALWAYS_ON: {ip: list(path) for ip, path in always_on.items()},
            TABLE_ON_DEMAND: {ip: list(path) for ip, path in on_demand.items()},
        }
        self.energy_state = "low"
        #: BUG-X: the "extra routing table" cached by the stats handler.
        self.active_table = TABLE_ALWAYS_ON
        #: Flow -> table name chosen when the flow was first routed.
        self.flow_tables: dict = {}
        self.flows_routed = 0
        self.polls_left = polls
        self.bug_viii = bug_viii
        self.bug_ix = bug_ix
        self.bug_x = bug_x
        self.bug_xi = bug_xi

    # ------------------------------------------------------------------
    # Symbolic-execution hints
    # ------------------------------------------------------------------

    def symbolic_domains(self) -> dict:
        return {"ip_dst": sorted(self.tables[TABLE_ALWAYS_ON])}

    # ------------------------------------------------------------------
    # Statistics-driven energy state
    # ------------------------------------------------------------------

    def external_events(self) -> list[str]:
        return ["poll_stats"]

    def handle_event(self, api, event: str) -> None:
        if event == "poll_stats" and self.polls_left > 0:
            self.polls_left -= 1
            api.query_port_stats(self.ingress)

    def port_stats_in(self, api, sw_id, stats, xid=0):
        """The paper's ``process_stats``: update the perceived energy state.

        BUG-X lives here: the handler also flips ``active_table``, which the
        rest of the code then consults for *every* new flow.
        """
        port_stats = stats.get(self.monitor_port)
        if port_stats is None:
            return
        utilization = port_stats["tx_bytes"] * 100 // LINK_CAPACITY
        if utilization > UTILIZATION_THRESHOLD:
            self.energy_state = "high"
            if self.bug_x:
                self.active_table = TABLE_ON_DEMAND
        else:
            self.energy_state = "low"
            if self.bug_x:
                self.active_table = TABLE_ALWAYS_ON
        if self.polls_left > 0:
            self.polls_left -= 1
            api.query_port_stats(self.ingress)

    # ------------------------------------------------------------------
    # Flow routing
    # ------------------------------------------------------------------

    def _choose_table(self) -> str:
        """Which routing table should the *next* new flow use?

        Specification (and the fixed behavior): always-on under low load;
        under high load alternate flows between the two tables so they split
        evenly.  The buggy variant consults the stats-handler-cached table
        instead, sending every flow on-demand under high load.
        """
        if self.bug_x:
            return self.active_table
        if self.energy_state == "low":
            return TABLE_ALWAYS_ON
        if self.flows_routed % 2 == 0:
            return TABLE_ALWAYS_ON
        return TABLE_ON_DEMAND

    def clone(self):
        """Fast checkpoint copy: scalars plus the flow->table map; the
        routing tables themselves are static configuration, shared."""
        new = copy.copy(self)
        new.flow_tables = dict(self.flow_tables)
        return new

    def packet_in(self, api, sw_id, inport, pkt, bufid, reason):
        if pkt.type != ETH_TYPE_IP:
            api.drop_buffer(sw_id, bufid)
            return
        if pkt.ip_dst not in self.tables[TABLE_ALWAYS_ON]:
            api.drop_buffer(sw_id, bufid)
            return
        dst = int(pkt.ip_dst)
        flow = self._flow_of(pkt)
        if sw_id == self.ingress:
            table_name = self._choose_table()
            self.flow_tables[flow] = table_name
            self.flows_routed += 1
            path = self.tables[table_name][dst]
            for hop_switch, out_port in path:
                api.install_rule(hop_switch, self._flow_match(pkt),
                                 [ActionOutput(out_port)],
                                 hard_timer=PERMANENT)
            if not self.bug_viii:
                api.send_packet_out(sw_id, pkt=None, bufid=bufid)
            # BUG-VIII: the packet that triggered this handler stays
            # buffered at the ingress switch.
            return
        # A packet reached a non-ingress switch before its rule: the
        # original program implicitly assumed this never happens.
        if self.bug_ix:
            return  # BUG-IX: ignored, left in the switch buffer
        hop = self._find_hop(sw_id, dst, flow)
        if hop is None:
            # BUG-XI: the reporting switch is not on any *current* path
            # (the load dropped and the tables were recomputed), so the
            # program gives up on the packet.
            if self.bug_xi:
                return
            # Fix: fall back to the table recorded for this flow.
            hop = self._find_hop_in(self.flow_tables.get(flow), sw_id, dst)
            if hop is None:
                api.drop_buffer(sw_id, bufid)
                return
        api.send_packet_out(sw_id, pkt=None, bufid=bufid,
                            actions=[ActionOutput(hop)])

    def _find_hop(self, sw_id: str, dst: int, flow) -> int | None:
        """The out-port for ``sw_id`` per the *currently chosen* table —
        faithful to the buggy lookup the paper describes for BUG-XI."""
        table_name = self._current_lookup_table()
        return self._find_hop_in(table_name, sw_id, dst)

    def _current_lookup_table(self) -> str:
        if self.bug_x:
            return self.active_table
        return TABLE_ALWAYS_ON if self.energy_state == "low" else TABLE_ON_DEMAND

    def _find_hop_in(self, table_name: str | None, sw_id: str,
                     dst: int) -> int | None:
        if table_name is None:
            return None
        path = self.tables[table_name].get(dst, [])
        for hop_switch, out_port in path:
            if hop_switch == sw_id:
                return out_port
        return None

    @staticmethod
    def _flow_of(pkt) -> tuple:
        return (int(pkt.ip_src), int(pkt.ip_dst),
                int(pkt.tp_src), int(pkt.tp_dst))

    def _flow_match(self, pkt) -> Match:
        return Match(
            dl_type=ETH_TYPE_IP,
            nw_src=int(pkt.ip_src),
            nw_dst=int(pkt.ip_dst),
            tp_src=int(pkt.tp_src),
            tp_dst=int(pkt.tp_dst),
        )


def expected_path(app: EnergyTrafficEngineering, packet) -> list[set[str]]:
    """Specification for the UseCorrectRoutingTable property (Section 8.3).

    Low load: new flows must use exactly the always-on path's switches.
    High load: flows must split evenly — flow k uses always-on for even k,
    on-demand for odd k.  ``app.flows_routed`` was already incremented for
    the flow under check, hence the ``- 1``.
    """
    dst = int(packet.ip_dst)
    always = {sw for sw, _ in app.tables[TABLE_ALWAYS_ON].get(dst, [])}
    demand = {sw for sw, _ in app.tables[TABLE_ON_DEMAND].get(dst, [])}
    if app.energy_state == "low":
        return [always]
    parity = (app.flows_routed - 1) % 2
    return [always] if parity == 0 else [demand]
