"""The three real applications the paper tests (Section 8), reimplemented
faithfully from their descriptions — including the eleven bugs — plus the
fixed variants the paper discusses.

* :mod:`repro.apps.pyswitch` — MAC-learning switch (BUG-I, II, III);
* :mod:`repro.apps.loadbalancer` — wildcard-rule web server load balancer
  (BUG-IV, V, VI, VII);
* :mod:`repro.apps.energy_te` — energy-efficient traffic engineering
  (BUG-VIII, IX, X, XI).
"""

from repro.apps.pyswitch import PySwitch
from repro.apps.pyswitch_fixed import PySwitchFixed, PySwitchSpanningTree
from repro.apps.loadbalancer import LoadBalancer
from repro.apps.loadbalancer_fixed import LoadBalancerFixed
from repro.apps.energy_te import EnergyTrafficEngineering
from repro.apps.energy_te_fixed import EnergyTrafficEngineeringFixed

__all__ = [
    "EnergyTrafficEngineering",
    "EnergyTrafficEngineeringFixed",
    "LoadBalancer",
    "LoadBalancerFixed",
    "PySwitch",
    "PySwitchFixed",
    "PySwitchSpanningTree",
]
