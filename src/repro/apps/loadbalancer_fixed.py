"""The load balancer with all four Section 8.2 fixes applied.

* BUG-IV fix — forward the triggering packet after installing its rule;
* BUG-V fix — install the redirect rule before deleting the old wildcard
  rule, and handle ``NO_MATCH`` packet-ins like any other;
* BUG-VI fix — discard buffered ARP requests after answering them;
* BUG-VII fix — a SYN for a flow that already has an assignment keeps it
  (duplicate SYNs no longer re-assign the connection).
"""

from __future__ import annotations

from repro.apps.loadbalancer import LoadBalancer


class LoadBalancerFixed(LoadBalancer):
    """All bugs disabled; see :class:`repro.apps.loadbalancer.LoadBalancer`."""

    name = "loadbalancer_fixed"

    def __init__(self, *args, **kwargs):
        for flag in ("bug_iv", "bug_v", "bug_vi", "bug_vii"):
            kwargs.setdefault(flag, False)
        super().__init__(*args, **kwargs)
